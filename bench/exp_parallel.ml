(* Parallel-engine benchmark: the same measurement batch run serially
   (pool of one, no cache) and across the domain pool, with a
   bit-identical result check — the engine's determinism contract is
   asserted on every harness run, not only in the test suite. *)

open Microprobe

(* Exact period skipping: the same periodic steady-state kernel
   simulated densely and with the period detector on, on fresh
   cache-less machines so every run actually simulates. Two kernels:
   independent fadd (occupancy 1.0, the simplest steady state) and
   independent mulld (occupancy 1.43 — non-dyadic, exercising the
   fixed-point residual arithmetic: its boundary state only repeats
   once the fractional tick phases realign). The kernel size of 250 is
   deliberate: 250 mulld issues advance a pipe's residual phase by
   250*143 = 50 mod 100 ticks per iteration, so the phases alternate
   between two genuinely fractional states with a 2-iteration period —
   a state the old float residuals could never fingerprint-match —
   while still repeating early enough inside measure=64 that the
   skipping run simulates only a short head and tail. This is the
   acceptance benchmark for the detector, and the bit-identity checks
   plus the hits>0 checks make CI fail loudly if either kernel class
   regresses into silent dense simulation. *)
let period_kernel (ctx : Context.t) ~mnemonic ~prefix ~measure =
  let arch = ctx.Context.arch in
  let ins = Arch.find_instruction arch mnemonic in
  let synth = Synthesizer.create ~name:("period-" ^ mnemonic) arch in
  Synthesizer.add_pass synth (Passes.skeleton ~size:250);
  Synthesizer.add_pass synth (Passes.fill_sequence [ ins ]);
  Synthesizer.add_pass synth (Passes.dependency Builder.No_deps);
  let p = Synthesizer.synthesize ~seed:7 synth in
  let cfg = Context.config ctx ~cores:8 ~smt:2 in
  let reps = if ctx.Context.quick then 5 else 20 in
  let time_reps ~period =
    (* a fresh machine per side: no measurement cache, same seed, so
       the two sides are directly comparable and bit-identical *)
    let machine = Machine.create ~cache:false arch.Arch.uarch in
    let t0 = Unix.gettimeofday () in
    let last = ref None in
    for _ = 1 to reps do
      last := Some (Machine.run ~measure ~period machine cfg p)
    done;
    (Option.get !last, Unix.gettimeofday () -. t0)
  in
  let dense, t_dense = time_reps ~period:false in
  let hits0 = Core_sim.period_hits () in
  let skipped0 = Core_sim.cycles_skipped () in
  let skip, t_skip = time_reps ~period:true in
  let hits = Core_sim.period_hits () - hits0 in
  let skipped = Core_sim.cycles_skipped () - skipped0 in
  if compare dense skip <> 0 then
    failwith
      (Printf.sprintf
         "period bench: %s skipping run diverges from the dense run" mnemonic);
  if hits = 0 then
    failwith
      (Printf.sprintf
         "period bench: no period detected on periodic kernel %s — the \
          detector has regressed into silent dense simulation" mnemonic);
  let speedup = t_dense /. Float.max t_skip 1e-9 in
  Context.record_metric ctx (prefix ^ "_measure") (float_of_int measure);
  Context.record_metric ctx (prefix ^ "_dense_seconds") t_dense;
  Context.record_metric ctx (prefix ^ "_skip_seconds") t_skip;
  Context.record_metric ctx (prefix ^ "_speedup") speedup;
  Context.record_metric ctx (prefix ^ "_hits") (float_of_int hits);
  Context.record_metric ctx (prefix ^ "_cycles_skipped") (float_of_int skipped);
  Context.log
    "%s @8c-smt2, measure=%d, %d reps: dense %.2fs, skipping %.2fs ->\n\
     %.1fx speedup; %d periods detected, %d cycles skipped;\n\
     results bit-identical"
    mnemonic measure reps t_dense t_skip speedup hits skipped

let period_bench (ctx : Context.t) =
  Context.section "Exact period skipping — dense vs skipping simulation";
  period_kernel ctx ~mnemonic:"fadd" ~prefix:"period_bench" ~measure:64;
  period_kernel ctx ~mnemonic:"mulld" ~prefix:"period_nondyadic" ~measure:64

let run (ctx : Context.t) =
  period_bench ctx;
  Context.section "Parallel engine — pooled run_batch vs serial";
  let arch = ctx.Context.arch in
  let programs = Context.family_programs ~skip:2 ctx in
  let configs =
    [ Context.config ctx ~cores:1 ~smt:1;
      Context.config ctx ~cores:4 ~smt:2;
      Context.config ctx ~cores:8 ~smt:4 ]
  in
  let jobs =
    List.concat_map (fun c -> List.map (fun p -> (c, p)) programs) configs
  in
  Context.log "%d jobs (%d programs x %d configurations), pool of %d domains"
    (List.length jobs) (List.length programs) (List.length configs)
    (Mp_util.Parallel.size ctx.Context.pool);
  (* fresh machines with the cache off so both sides simulate every job *)
  let serial_machine = Machine.create ~cache:false arch.Arch.uarch in
  let serial_pool = Mp_util.Parallel.create 1 in
  let t0 = Unix.gettimeofday () in
  let serial = Machine.run_batch ~pool:serial_pool serial_machine jobs in
  let t_serial = Unix.gettimeofday () -. t0 in
  Mp_util.Parallel.shutdown serial_pool;
  let par_machine = Machine.create ~cache:false arch.Arch.uarch in
  let steals0 = Mp_util.Parallel.steal_count ctx.Context.pool in
  let t0 = Unix.gettimeofday () in
  let par = Machine.run_batch ~pool:ctx.Context.pool par_machine jobs in
  let t_par = Unix.gettimeofday () -. t0 in
  let steals = Mp_util.Parallel.steal_count ctx.Context.pool - steals0 in
  let identical = List.for_all2 (fun a b -> compare a b = 0) serial par in
  if not identical then
    failwith "parbench: pooled results diverge from the serial run";
  let speedup = t_serial /. t_par in
  Context.record_metric ctx "parbench_jobs" (float_of_int (List.length jobs));
  Context.record_metric ctx "parbench_serial_seconds" t_serial;
  Context.record_metric ctx "parbench_parallel_seconds" t_par;
  Context.record_metric ctx "parbench_speedup" speedup;
  Context.record_metric ctx "parbench_steals" (float_of_int steals);
  Context.log
    "serial %.2fs, pooled %.2fs -> %.2fx speedup (%d jobs stolen across\n\
     workers); results bit-identical"
    t_serial t_par speedup steals;
  (* memoization: the same batch again on a caching machine — the warm
     pass must also match the serial reference bit for bit *)
  let memo_machine = Machine.create arch.Arch.uarch in
  let t0 = Unix.gettimeofday () in
  ignore (Machine.run_batch ~pool:ctx.Context.pool memo_machine jobs);
  let t_cold = Unix.gettimeofday () -. t0 in
  let t0 = Unix.gettimeofday () in
  let warm = Machine.run_batch ~pool:ctx.Context.pool memo_machine jobs in
  let t_warm = Unix.gettimeofday () -. t0 in
  if not (List.for_all2 (fun a b -> compare a b = 0) serial warm) then
    failwith "parbench: cached results diverge from the serial run";
  let memo_speedup = t_cold /. Float.max t_warm 1e-9 in
  Context.record_metric ctx "parbench_memo_cold_seconds" t_cold;
  Context.record_metric ctx "parbench_memo_warm_seconds" t_warm;
  Context.record_metric ctx "parbench_memo_speedup" memo_speedup;
  (* disk hits on the "cold" pass mean a previous harness invocation of
     this same build already simulated these points *)
  let disk_hits =
    match Machine.measurement_cache memo_machine with
    | None -> 0
    | Some c ->
      let s = Measurement_cache.stats c in
      Context.record_metric ctx "parbench_disk_hits"
        (float_of_int s.Measurement_cache.disk_hits);
      if s.Measurement_cache.disk_hits > 0 then
        Context.log "%d of the cold-pass lookups were served from the disk cache"
          s.Measurement_cache.disk_hits;
      s.Measurement_cache.disk_hits
  in
  (* The warm pass does no simulation — only key derivation and table
     lookups — so it must be decisively faster than the cold pass. A
     floor of 1.5x catches a key path regressing into per-lookup
     serialisation. When the cold pass itself was served from a warm
     disk cache (a previous run of this build), both sides skip
     simulation and only a regression below parity is meaningful. *)
  let floor = if disk_hits > 0 then 1.0 else 1.5 in
  if memo_speedup < floor then
    failwith
      (Printf.sprintf
         "parbench: warm memoized batch only %.2fx faster than cold \
          (floor %.1fx) — the cache lookup path has regressed"
         memo_speedup floor);
  Context.log
    "memoized rerun: cold %.2fs, warm %.3fs -> %.0fx; cached results\n\
     bit-identical to serial"
    t_cold t_warm memo_speedup
